// The byte-identity gate for the observer-compatible fast path
// (scc/observer.h capability model).
//
// PR 6 lets the coalesced BulkOp path stay on while the built-in
// observers — check::RaceChecker, the JSON trace sink, and
// fault::FaultInjector — are installed, dispatching batched or
// reference-instant per-line observation instead of forcing the per-line
// slow path. The contract is that NOTHING observable may change: checker
// verdicts and their full provenance (seqs, times, stages), rendered
// trace JSON bytes, fault outcomes and injection counts, and service SLO
// metrics must be bit-identical with the fast path forced on vs off.
// These tests run every registry algorithm both ways and compare.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/checker.h"
#include "coll/registry.h"
#include "harness/fault_sweep.h"
#include "harness/measurement.h"
#include "rma/rma.h"
#include "scc/chip.h"
#include "scc/trace_json.h"
#include "svc/service.h"

namespace ocb {
namespace {

const std::vector<std::string>& algorithms() {
  static const std::vector<std::string> names = coll::names();
  return names;
}

harness::BcastRunSpec spec_for(const std::string& name, bool coalescing) {
  harness::BcastRunSpec spec;
  spec.algorithm_name = name;
  spec.message_bytes = 96 * kCacheLineBytes;
  spec.iterations = 2;
  spec.warmup = 1;
  spec.config.coalescing = coalescing;
  return spec;
}

void expect_same_timeline(const harness::BcastRunResult& on,
                          const harness::BcastRunResult& off) {
  EXPECT_EQ(on.end_time, off.end_time);
  ASSERT_EQ(on.latency_us.count(), off.latency_us.count());
  for (std::size_t i = 0; i < on.latency_us.count(); ++i) {
    EXPECT_DOUBLE_EQ(on.latency_us.samples()[i], off.latency_us.samples()[i])
        << "iteration " << i;
  }
  EXPECT_TRUE(on.content_ok);
  EXPECT_TRUE(off.content_ok);
}

// --- checked runs -----------------------------------------------------------

TEST(ObserverFastpath, CheckedRunsAreBitIdentical) {
  for (const std::string& name : algorithms()) {
    harness::BcastRunSpec on_spec = spec_for(name, true);
    on_spec.check = true;
    harness::BcastRunSpec off_spec = spec_for(name, false);
    off_spec.check = true;

    harness::BcastSession on_session(on_spec);
    // The capability model's whole point: a passive, bulk-capable checker
    // keeps the coalesced fast path ON.
    EXPECT_TRUE(on_session.chip().coalescing_active()) << name;
    const harness::BcastRunResult on = on_session.run();
    const harness::BcastRunResult off = harness::run_broadcast(off_spec);

    expect_same_timeline(on, off);
    // Verdicts: the shipped collectives are race-free, both ways.
    EXPECT_EQ(on.race_violations, 0u) << name;
    EXPECT_EQ(off.race_violations, 0u) << name;
  }
}

// A deliberately racing workload, so the identity check covers verdicts
// WITH provenance (cores, ops, seqs, times, stages), not just zero counts.
// Two cores put to the same remote MPB lines with no ordering edge; a
// third gets them. Coalesced on both arms, the checker must reconstruct
// the identical violation list — report() renders every recorded field,
// so string equality is full-provenance equality.
std::string racy_report(bool coalescing) {
  scc::SccConfig cfg;
  cfg.coalescing = coalescing;
  scc::SccChip chip(cfg);
  check::RaceChecker checker(chip);
  chip.add_observer(&checker);
  EXPECT_EQ(chip.coalescing_active(), coalescing);

  for (CoreId writer : {1, 2}) {
    chip.spawn(writer, [](scc::Core& me) -> sim::Task<void> {
      me.set_stage("racy-put");
      co_await rma::put_mpb_to_mpb(me, {0, 16}, 0, 8);
    });
  }
  chip.spawn(3, [](scc::Core& me) -> sim::Task<void> {
    me.set_stage("racy-get");
    co_await rma::get_mpb_to_mpb(me, 0, {0, 16}, 8);
  });
  EXPECT_TRUE(chip.run().completed());
  EXPECT_GT(checker.total_detected(), 0u);
  return checker.report();
}

TEST(ObserverFastpath, RaceProvenanceIsBitIdentical) {
  EXPECT_EQ(racy_report(true), racy_report(false));
}

// --- traced runs ------------------------------------------------------------

TEST(ObserverFastpath, TraceJsonBytesAreBitIdentical) {
  for (const std::string& name : algorithms()) {
    std::string json[2];
    for (int arm = 0; arm < 2; ++arm) {
      harness::BcastSession session(spec_for(name, arm == 0));
      scc::JsonTraceCollector trace;
      // The legacy per-line sink (no bulk companion): coalesced ops must
      // synthesize the exact per-line event stream.
      session.chip().set_trace_sink(trace.sink());
      EXPECT_EQ(session.chip().coalescing_active(), arm == 0) << name;
      const harness::BcastRunResult r = session.run();
      EXPECT_TRUE(r.content_ok);
      json[arm] = trace.to_json();
    }
    EXPECT_EQ(json[0], json[1]) << name;
  }
}

// --- fault-injected runs ----------------------------------------------------

harness::FaultRunSpec fault_spec(bool coalescing) {
  harness::FaultRunSpec spec;
  spec.message_bytes = 16 * 1024;
  spec.ft.parties = kNumCores;
  spec.plan.seed = 7;
  spec.plan.rates.mpb_read = 2e-4;
  spec.plan.rates.mpb_write = 1e-4;
  spec.plan.stalls.push_back({9, 40 * sim::kMicrosecond, 60 * sim::kMicrosecond});
  spec.plan.crashes.push_back({17, 30 * sim::kMicrosecond});
  spec.config.coalescing = coalescing;
  spec.check_races = true;
  return spec;
}

TEST(ObserverFastpath, FaultOutcomesAreBitIdentical) {
  const harness::FaultRunOutcome on = run_fault_once(fault_spec(true));
  const harness::FaultRunOutcome off = run_fault_once(fault_spec(false));

  EXPECT_EQ(on.drained, off.drained);
  EXPECT_EQ(on.parties, off.parties);
  EXPECT_EQ(on.crashed, off.crashed);
  EXPECT_EQ(on.survivors, off.survivors);
  EXPECT_EQ(on.correct, off.correct);
  EXPECT_EQ(on.gave_up, off.gave_up);
  EXPECT_EQ(on.delivered, off.delivered);
  EXPECT_EQ(on.stalled_processes, off.stalled_processes);
  EXPECT_EQ(on.stalled_details, off.stalled_details);
  EXPECT_DOUBLE_EQ(on.latency_us, off.latency_us);
  EXPECT_EQ(on.injections.reads_corrupted, off.injections.reads_corrupted);
  EXPECT_EQ(on.injections.writes_corrupted, off.injections.writes_corrupted);
  EXPECT_EQ(on.injections.writes_suppressed, off.injections.writes_suppressed);
  EXPECT_EQ(on.injections.stalls_applied, off.injections.stalls_applied);
  EXPECT_EQ(on.injections.crashes_applied, off.injections.crashes_applied);
  EXPECT_EQ(on.race_violations, off.race_violations);
  EXPECT_EQ(on.race_report, off.race_report);
}

// A zero-rate injector (the common "FT run, no faults today" shape) is
// pre-sampled as needing no per-line callbacks at all, so it must keep
// quiescent coalescing fully enabled — and still match the off arm.
TEST(ObserverFastpath, ZeroRateInjectorKeepsFastPath) {
  harness::FaultRunSpec on_spec;
  on_spec.message_bytes = 16 * 1024;
  on_spec.ft.parties = kNumCores;
  harness::FaultRunSpec off_spec = on_spec;
  off_spec.config.coalescing = false;

  const harness::FaultRunOutcome on = run_fault_once(on_spec);
  const harness::FaultRunOutcome off = run_fault_once(off_spec);
  EXPECT_TRUE(on.all_survivors_correct());
  EXPECT_TRUE(off.all_survivors_correct());
  EXPECT_DOUBLE_EQ(on.latency_us, off.latency_us);
  EXPECT_EQ(on.injections.total(), 0u);
  // Fewer events on the fast arm: quiescent ops really collapsed.
  EXPECT_LE(on.events, off.events);
}

// --- service runs -----------------------------------------------------------

TEST(ObserverFastpath, ServiceMetricsAreBitIdentical) {
  svc::TrafficSpec traffic;
  traffic.requests = 12;
  traffic.mean_gap_ns = 30'000;
  traffic.sizes = {{kCacheLineBytes, 2}, {4096, 2}, {16384, 1}};
  traffic.seed = 99;

  for (const std::string& algorithm : {std::string("ocbcast"),
                                       std::string("ft-ocbcast")}) {
    std::string json[2];
    for (int arm = 0; arm < 2; ++arm) {
      svc::ServiceConfig config;
      config.algorithm = algorithm;
      config.check = true;  // checker rides along, fast path stays on
      config.chip.coalescing = arm == 0;
      const svc::ServiceMetrics m = svc::run_service(config, traffic);
      EXPECT_TRUE(m.content_ok) << algorithm;
      EXPECT_EQ(m.race_violations, 0u) << algorithm;
      json[arm] = m.to_json();
    }
    // to_json renders counts, makespan, throughput, and all three
    // latency histograms — bit-identity covers the whole SLO surface.
    EXPECT_EQ(json[0], json[1]) << algorithm;
  }
}

}  // namespace
}  // namespace ocb
