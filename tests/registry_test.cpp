// Registry registration semantics (coll/registry.h).
//
// Duplicate registration is a precondition error unless the caller passes
// allow_override: the registry is shared process-global state, and a silent
// last-wins overwrite would let a runtime registrant (e.g. "adaptive", or a
// test-only mutation) shadow a builtin without any diagnostic.
#include <gtest/gtest.h>

#include <memory>

#include "coll/registry.h"
#include "common/require.h"
#include "core/binomial.h"
#include "scc/chip.h"

namespace {

using namespace ocb;

coll::Factory binomial_factory(int parties) {
  return [parties](scc::SccChip& chip, const coll::Params&) {
    core::BinomialOptions o;
    o.parties = parties;
    return std::unique_ptr<coll::Collective>(
        new core::BinomialBcast(chip, o));
  };
}

TEST(Registry, DuplicateRegistrationFailsWithDiagnostic) {
  coll::register_collective("registry-test-dup", binomial_factory(8));
  ASSERT_TRUE(coll::registered("registry-test-dup"));
  try {
    coll::register_collective("registry-test-dup", binomial_factory(4));
    FAIL() << "duplicate registration must throw";
  } catch (const PreconditionError& e) {
    // The diagnostic names the colliding algorithm.
    EXPECT_NE(std::string(e.what()).find("registry-test-dup"),
              std::string::npos)
        << e.what();
  }
  // The original factory survived the failed overwrite.
  scc::SccChip chip;
  auto coll = coll::make("registry-test-dup", chip, {});
  EXPECT_EQ(coll->parties(), 8);
}

TEST(Registry, BuiltinsAreProtectedToo) {
  ASSERT_TRUE(coll::registered("ocbcast"));
  EXPECT_THROW(coll::register_collective("ocbcast", binomial_factory(8)),
               PreconditionError);
}

TEST(Registry, AllowOverrideReplacesFactory) {
  coll::register_collective("registry-test-override", binomial_factory(8));
  coll::register_collective("registry-test-override", binomial_factory(16),
                            /*allow_override=*/true);
  scc::SccChip chip;
  auto coll = coll::make("registry-test-override", chip, {});
  EXPECT_EQ(coll->parties(), 16);
}

TEST(Registry, EmptyNameAndNullFactoryRejected) {
  EXPECT_THROW(coll::register_collective("", binomial_factory(8)),
               PreconditionError);
  EXPECT_THROW(coll::register_collective("registry-test-null", coll::Factory{}),
               PreconditionError);
  EXPECT_FALSE(coll::registered("registry-test-null"));
}

TEST(Registry, UnknownNameListsRegisteredAlgorithms) {
  scc::SccChip chip;
  try {
    coll::make("registry-test-no-such-algorithm", chip, {});
    FAIL() << "unknown name must throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("registry-test-no-such-algorithm"), std::string::npos);
    EXPECT_NE(what.find("ocbcast"), std::string::npos);
    EXPECT_NE(what.find("binomial"), std::string::npos);
  }
}

}  // namespace
