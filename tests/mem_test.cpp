// Unit tests for MPB storage and private off-chip memory.
#include <gtest/gtest.h>

#include "mem/mpb.h"
#include "mem/private_memory.h"
#include "sim/engine.h"

namespace ocb::mem {
namespace {

CacheLine line_of(std::uint8_t fill) {
  CacheLine cl;
  cl.bytes.fill(std::byte{fill});
  return cl;
}

TEST(MpbStorage, LoadStoreRoundTrip) {
  sim::Engine e;
  MpbStorage mpb(e);
  mpb.store(0, line_of(0xAA));
  mpb.store(255, line_of(0xBB));
  EXPECT_EQ(mpb.load(0), line_of(0xAA));
  EXPECT_EQ(mpb.load(255), line_of(0xBB));
  EXPECT_EQ(mpb.load(100), CacheLine{}) << "untouched lines read as zero";
}

TEST(MpbStorage, BoundsChecked) {
  sim::Engine e;
  MpbStorage mpb(e);
  EXPECT_THROW(mpb.load(256), PreconditionError);
  EXPECT_THROW(mpb.store(256, CacheLine{}), PreconditionError);
  EXPECT_THROW(mpb.line_trigger(256), PreconditionError);
}

TEST(MpbStorage, CapacityIs256Lines) {
  EXPECT_EQ(MpbStorage::capacity_lines(), 256u);
  EXPECT_EQ(kMpbBytesPerCore, 8u * 1024u);
}

TEST(MpbStorage, StoreFiresLineTrigger) {
  sim::Engine e;
  MpbStorage mpb(e);
  sim::Trigger& t = mpb.line_trigger(7);
  EXPECT_EQ(t.epoch(), 0u);
  mpb.store(7, line_of(1));
  EXPECT_EQ(t.epoch(), 1u);
  mpb.store(8, line_of(1));
  EXPECT_EQ(t.epoch(), 1u) << "other lines do not fire this trigger";
}

TEST(MpbStorage, HostLineBypassesTrigger) {
  sim::Engine e;
  MpbStorage mpb(e);
  sim::Trigger& t = mpb.line_trigger(3);
  mpb.host_line(3) = line_of(9);
  EXPECT_EQ(t.epoch(), 0u);
  EXPECT_EQ(mpb.load(3), line_of(9));
}

TEST(MpbStorage, TriggerIdentityStablePerLine) {
  sim::Engine e;
  MpbStorage mpb(e);
  EXPECT_EQ(&mpb.line_trigger(5), &mpb.line_trigger(5));
  EXPECT_NE(&mpb.line_trigger(5), &mpb.line_trigger(6));
}

TEST(PrivateMemory, LoadStoreRoundTrip) {
  PrivateMemory mem;
  mem.store(64, line_of(0x5C));
  EXPECT_EQ(mem.load(64), line_of(0x5C));
  EXPECT_EQ(mem.load(128), CacheLine{}) << "fresh memory reads as zero";
}

TEST(PrivateMemory, AlignmentEnforced) {
  PrivateMemory mem;
  EXPECT_THROW(mem.load(1), PreconditionError);
  EXPECT_THROW(mem.store(33, CacheLine{}), PreconditionError);
  EXPECT_NO_THROW(mem.load(0));
  EXPECT_NO_THROW(mem.load(32));
}

TEST(PrivateMemory, GrowsOnDemand) {
  PrivateMemory mem;
  EXPECT_EQ(mem.size(), 0u);
  mem.store(1024, line_of(1));
  EXPECT_GE(mem.size(), 1056u);
}

TEST(PrivateMemory, LimitEnforced) {
  PrivateMemory mem(/*limit_bytes=*/2 << 20);
  EXPECT_NO_THROW(mem.store((2u << 20) - 32, line_of(1)));
  EXPECT_THROW(mem.store(2u << 20, line_of(1)), PreconditionError);
  EXPECT_THROW(mem.host_bytes(0, (2u << 20) + 1), PreconditionError);
}

TEST(PrivateMemory, HostBytesWindowIsLive) {
  PrivateMemory mem;
  auto w = mem.host_bytes(96, 32);
  w[0] = std::byte{0x42};
  EXPECT_EQ(mem.load(96).bytes[0], std::byte{0x42});
  mem.store(96, line_of(0x11));
  EXPECT_EQ(w[0], std::byte{0x11});
}

TEST(PrivateMemory, SeparateInstancesIsolated) {
  PrivateMemory a, b;
  a.store(0, line_of(1));
  EXPECT_EQ(b.load(0), CacheLine{});
}

}  // namespace
}  // namespace ocb::mem
