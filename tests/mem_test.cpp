// Unit tests for MPB storage and private off-chip memory.
#include <gtest/gtest.h>

#include "mem/mpb.h"
#include "mem/mpb_slots.h"
#include "mem/private_memory.h"
#include "sim/engine.h"

namespace ocb::mem {
namespace {

CacheLine line_of(std::uint8_t fill) {
  CacheLine cl;
  cl.bytes.fill(std::byte{fill});
  return cl;
}

TEST(MpbStorage, LoadStoreRoundTrip) {
  sim::Engine e;
  MpbStorage mpb(e);
  mpb.store(0, line_of(0xAA));
  mpb.store(255, line_of(0xBB));
  EXPECT_EQ(mpb.load(0), line_of(0xAA));
  EXPECT_EQ(mpb.load(255), line_of(0xBB));
  EXPECT_EQ(mpb.load(100), CacheLine{}) << "untouched lines read as zero";
}

TEST(MpbStorage, BoundsChecked) {
  sim::Engine e;
  MpbStorage mpb(e);
  EXPECT_THROW(mpb.load(256), PreconditionError);
  EXPECT_THROW(mpb.store(256, CacheLine{}), PreconditionError);
  EXPECT_THROW(mpb.line_trigger(256), PreconditionError);
}

TEST(MpbStorage, CapacityIs256Lines) {
  EXPECT_EQ(MpbStorage::capacity_lines(), 256u);
  EXPECT_EQ(kMpbBytesPerCore, 8u * 1024u);
}

TEST(MpbStorage, StoreFiresLineTrigger) {
  sim::Engine e;
  MpbStorage mpb(e);
  sim::Trigger& t = mpb.line_trigger(7);
  EXPECT_EQ(t.epoch(), 0u);
  mpb.store(7, line_of(1));
  EXPECT_EQ(t.epoch(), 1u);
  mpb.store(8, line_of(1));
  EXPECT_EQ(t.epoch(), 1u) << "other lines do not fire this trigger";
}

TEST(MpbStorage, HostLineBypassesTrigger) {
  sim::Engine e;
  MpbStorage mpb(e);
  sim::Trigger& t = mpb.line_trigger(3);
  mpb.host_line(3) = line_of(9);
  EXPECT_EQ(t.epoch(), 0u);
  EXPECT_EQ(mpb.load(3), line_of(9));
}

TEST(MpbStorage, TriggerIdentityStablePerLine) {
  sim::Engine e;
  MpbStorage mpb(e);
  EXPECT_EQ(&mpb.line_trigger(5), &mpb.line_trigger(5));
  EXPECT_NE(&mpb.line_trigger(5), &mpb.line_trigger(6));
}

TEST(PrivateMemory, LoadStoreRoundTrip) {
  PrivateMemory mem;
  mem.store(64, line_of(0x5C));
  EXPECT_EQ(mem.load(64), line_of(0x5C));
  EXPECT_EQ(mem.load(128), CacheLine{}) << "fresh memory reads as zero";
}

TEST(PrivateMemory, AlignmentEnforced) {
  PrivateMemory mem;
  EXPECT_THROW(mem.load(1), PreconditionError);
  EXPECT_THROW(mem.store(33, CacheLine{}), PreconditionError);
  EXPECT_NO_THROW(mem.load(0));
  EXPECT_NO_THROW(mem.load(32));
}

TEST(PrivateMemory, GrowsOnDemand) {
  PrivateMemory mem;
  EXPECT_EQ(mem.size(), 0u);
  mem.store(1024, line_of(1));
  EXPECT_GE(mem.size(), 1056u);
}

TEST(PrivateMemory, LimitEnforced) {
  PrivateMemory mem(/*limit_bytes=*/2 << 20);
  EXPECT_NO_THROW(mem.store((2u << 20) - 32, line_of(1)));
  EXPECT_THROW(mem.store(2u << 20, line_of(1)), PreconditionError);
  EXPECT_THROW(mem.host_bytes(0, (2u << 20) + 1), PreconditionError);
}

TEST(PrivateMemory, HostBytesWindowIsLive) {
  PrivateMemory mem;
  auto w = mem.host_bytes(96, 32);
  w[0] = std::byte{0x42};
  EXPECT_EQ(mem.load(96).bytes[0], std::byte{0x42});
  mem.store(96, line_of(0x11));
  EXPECT_EQ(w[0], std::byte{0x11});
}

TEST(PrivateMemory, SeparateInstancesIsolated) {
  PrivateMemory a, b;
  a.store(0, line_of(1));
  EXPECT_EQ(b.load(0), CacheLine{});
}

TEST(MpbStorage, HostClearLinesZeroesWithoutTriggers) {
  sim::Engine e;
  MpbStorage mpb(e);
  mpb.store(10, line_of(0xAA));
  mpb.store(11, line_of(0xBB));
  sim::Trigger& t = mpb.line_trigger(10);
  const std::uint64_t epoch = t.epoch();
  mpb.host_clear_lines(10, 2);
  EXPECT_EQ(mpb.load(10), CacheLine{});
  EXPECT_EQ(mpb.load(11), CacheLine{});
  EXPECT_EQ(t.epoch(), epoch) << "host scrub must not fire line triggers";
  EXPECT_THROW(mpb.host_clear_lines(255, 2), PreconditionError);
}

TEST(MpbSlots, LeasesAreDisjointAndLowestFirst) {
  MpbSlotAllocator alloc(/*base_line=*/0, /*slot_lines=*/100, /*slot_count=*/2);
  EXPECT_EQ(alloc.slots_total(), 2);
  EXPECT_EQ(alloc.slots_free(), 2);
  EXPECT_EQ(alloc.end_line(), 200u);

  const auto a = alloc.acquire();
  const auto b = alloc.acquire();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->slot, 0);
  EXPECT_EQ(b->slot, 1);
  EXPECT_EQ(a->base_line, 0u);
  EXPECT_EQ(b->base_line, 100u);
  EXPECT_EQ(a->lines, 100u);
  EXPECT_EQ(alloc.slots_free(), 0);
  EXPECT_FALSE(alloc.acquire().has_value()) << "exhausted pool yields nullopt";

  alloc.release(*a);
  EXPECT_EQ(alloc.slots_free(), 1);
  const auto c = alloc.acquire();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->slot, 0) << "lowest-numbered free slot is granted first";
}

TEST(MpbSlots, GenerationCountsGrants) {
  MpbSlotAllocator alloc(0, 50, 1);
  for (std::uint64_t g = 0; g < 3; ++g) {
    const auto lease = alloc.acquire();
    ASSERT_TRUE(lease.has_value());
    EXPECT_EQ(lease->generation, g);
    alloc.release(*lease);
  }
  EXPECT_EQ(alloc.generation(0), 3u);
}

TEST(MpbSlots, ReleaseValidatesTheLease) {
  MpbSlotAllocator alloc(0, 50, 2);
  const auto a = alloc.acquire();
  ASSERT_TRUE(a.has_value());

  MpbLease bogus = *a;
  bogus.slot = 1;  // not in use
  EXPECT_THROW(alloc.release(bogus), PreconditionError);
  bogus.slot = 5;  // out of range
  EXPECT_THROW(alloc.release(bogus), PreconditionError);

  alloc.release(*a);
  EXPECT_THROW(alloc.release(*a), PreconditionError) << "double release";

  const auto b = alloc.acquire();
  ASSERT_TRUE(b.has_value());
  EXPECT_THROW(alloc.release(*a), PreconditionError)
      << "stale lease from a previous generation";
  alloc.release(*b);
}

TEST(MpbSlots, PartitionMustFitTheMpb) {
  EXPECT_THROW(MpbSlotAllocator(200, 100, 1), PreconditionError);
  EXPECT_THROW(MpbSlotAllocator(0, 0, 1), PreconditionError);
  EXPECT_THROW(MpbSlotAllocator(0, 100, 0), PreconditionError);
  EXPECT_NO_THROW(MpbSlotAllocator(16, 120, 2));
}

}  // namespace
}  // namespace ocb::mem
