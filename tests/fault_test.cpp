// Fault injection + FT-OC-Bcast acceptance tests.
//
// Covers the ocb::fault subsystem end to end: injector determinism
// (identical plan + seed => bit-identical timeline), each fault class in
// isolation (transient read corruption, stuck flag lines, core stalls,
// fail-stop crashes), the >=20-seed crash+corruption sweep where every
// surviving core must deliver byte-correct payloads, the control arm
// showing the plain protocol corrupting silently under the same faults,
// and the <5% zero-fault overhead budget of the FT hardening.
#include <gtest/gtest.h>

#include <vector>

#include "common/stats.h"
#include "core/ft_ocbcast.h"
#include "fault/injector.h"
#include "harness/fault_sweep.h"
#include "harness/measurement.h"

namespace ocb {
namespace {

harness::FaultRunSpec base_spec(std::size_t message_bytes = 64 * 1024) {
  harness::FaultRunSpec spec;
  spec.message_bytes = message_bytes;
  spec.ft.parties = kNumCores;
  return spec;
}

TEST(FaultLayout, FitsTheMpbWithDefaults) {
  scc::SccChip chip;
  core::FtOcBcast bcast(chip);
  // notify + 7 done + 2 staged + 2x96 buffers + fence <= 256.
  EXPECT_LE(bcast.layout_lines(), kMpbCacheLines);
  EXPECT_EQ(bcast.notify_line(), 0u);
  EXPECT_EQ(bcast.done_line(0), 1u);
  EXPECT_EQ(bcast.staged_line(0), 8u);
  EXPECT_EQ(bcast.staged_line(1), 9u);
  EXPECT_EQ(bcast.buffer_line(0), 10u);
  EXPECT_EQ(bcast.buffer_line(1), 106u);
  EXPECT_EQ(bcast.fence_line(), 202u);
}

TEST(FaultInjector, IdenticalPlanGivesBitIdenticalTimeline) {
  harness::FaultRunSpec spec = base_spec();
  spec.plan.seed = 7;
  spec.plan.rates.mpb_read = 1e-4;
  spec.plan.crashes.push_back({.core = 3, .at = 20 * sim::kMicrosecond});
  const harness::FaultRunOutcome a = run_fault_once(spec);
  const harness::FaultRunOutcome b = run_fault_once(spec);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.latency_us, b.latency_us);
  EXPECT_EQ(a.injections.reads_corrupted, b.injections.reads_corrupted);
  EXPECT_EQ(a.injections.crashes_applied, b.injections.crashes_applied);
  EXPECT_EQ(a.correct, b.correct);
  // And a different seed perturbs the timeline (the corruption sites move).
  spec.plan.seed = 8;
  const harness::FaultRunOutcome c = run_fault_once(spec);
  EXPECT_NE(a.events, c.events);
}

TEST(FaultInjector, CountsWhatItDoes) {
  harness::FaultRunSpec spec = base_spec();
  spec.plan.seed = 11;
  spec.plan.rates.mpb_read = 1e-3;
  const harness::FaultRunOutcome out = run_fault_once(spec);
  EXPECT_GT(out.injections.reads_corrupted, 0u);
  EXPECT_EQ(out.injections.crashes_applied, 0u);
  EXPECT_EQ(out.injections.stalls_applied, 0u);
}

TEST(FtOcBcast, TransientReadCorruptionIsRecovered) {
  harness::FaultRunSpec spec = base_spec();
  spec.plan.rates.mpb_read = 1e-3;  // dozens of flips over a 64 KiB bcast
  spec.plan.rates.mem_read = 1e-3;  // incl. the root's staging reads
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    spec.plan.seed = seed;
    const harness::FaultRunOutcome out = run_fault_once(spec);
    EXPECT_TRUE(out.all_survivors_correct()) << "seed " << seed;
    EXPECT_EQ(out.crashed, 0) << "seed " << seed;
    EXPECT_GT(out.injections.reads_corrupted, 0u) << "seed " << seed;
  }
}

TEST(FtOcBcast, PlainProtocolCorruptsSilentlyUnderSameFaults) {
  // Control arm: the identical fault plans against the non-FT OC-Bcast must
  // deliver wrong bytes at least once across the seeds (otherwise the FT
  // machinery is being tested against nothing).
  harness::FaultRunSpec spec = base_spec();
  spec.use_ft = false;
  spec.plan.rates.mpb_read = 1e-3;
  int wrong = 0;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    spec.plan.seed = seed;
    const harness::FaultRunOutcome out = run_fault_once(spec);
    if (out.correct < out.survivors) ++wrong;
  }
  EXPECT_GT(wrong, 0);
}

TEST(FtOcBcast, StuckDoneFlagIsRiddenOut) {
  harness::FaultRunSpec spec = base_spec();
  spec.plan.seed = 21;
  // Root's first done line (child 1's acks, first write ~64 us in) drops
  // every write until 120 us; the child's reliable writes retry with
  // doubling backoff (~126 us of budget) until the window passes.
  spec.plan.stuck_lines.push_back(
      {.owner = 0, .line = 1, .from = 0, .until = 120 * sim::kMicrosecond});
  const harness::FaultRunOutcome out = run_fault_once(spec);
  EXPECT_TRUE(out.all_survivors_correct());
  EXPECT_GT(out.injections.writes_suppressed, 0u);
}

TEST(FtOcBcast, StuckNotifyFlagFallsBackToStagedPolling) {
  harness::FaultRunSpec spec = base_spec();
  spec.plan.seed = 22;
  // Core 1's notify line never receives a write for the whole run: its
  // notification hint dies, the staged-line ground truth carries it.
  spec.plan.stuck_lines.push_back(
      {.owner = 1, .line = 0, .from = 0, .until = ~std::uint64_t{0}});
  const harness::FaultRunOutcome out = run_fault_once(spec);
  EXPECT_TRUE(out.all_survivors_correct());
}

TEST(FtOcBcast, StallBelowWatchdogBudgetIsAbsorbed) {
  harness::FaultRunSpec spec = base_spec();
  spec.plan.seed = 23;
  spec.plan.stalls.push_back(
      {.core = 9, .at = 10 * sim::kMicrosecond, .duration = 100 * sim::kMicrosecond});
  const harness::FaultRunOutcome out = run_fault_once(spec);
  EXPECT_TRUE(out.all_survivors_correct());
  EXPECT_EQ(out.injections.stalls_applied, 1u);
}

TEST(FtOcBcast, InteriorCrashIsRoutedAround) {
  // Core 1 is an interior node (children 8..14 with k=7, root 0): its death
  // orphans a whole subtree, exercising re-routing AND ack substitution.
  harness::FaultRunSpec spec = base_spec();
  spec.plan.seed = 31;
  spec.plan.crashes.push_back({.core = 1, .at = 30 * sim::kMicrosecond});
  const harness::FaultRunOutcome out = run_fault_once(spec);
  EXPECT_EQ(out.crashed, 1);
  EXPECT_EQ(out.survivors, kNumCores - 1);
  EXPECT_TRUE(out.all_survivors_correct());
  EXPECT_EQ(static_cast<int>(out.stalled_processes), 1);  // the dead core
  ASSERT_EQ(out.stalled_details.size(), 1u);
  EXPECT_NE(out.stalled_details[0].find("core 1"), std::string::npos);
  EXPECT_NE(out.stalled_details[0].find("fail-stop"), std::string::npos);
}

TEST(FtOcBcast, LeafCrashIsSubstitutedImmediately) {
  harness::FaultRunSpec spec = base_spec();
  spec.plan.seed = 32;
  spec.plan.crashes.push_back({.core = 47, .at = 15 * sim::kMicrosecond});
  const harness::FaultRunOutcome out = run_fault_once(spec);
  EXPECT_EQ(out.crashed, 1);
  EXPECT_TRUE(out.all_survivors_correct());
}

// The ISSUE acceptance sweep: >= 20 seeds of transient corruption plus one
// non-root crash; every surviving core must deliver byte-correct payloads.
TEST(FtOcBcast, AcceptanceSweepCrashPlusCorruption) {
  harness::FaultRunSpec spec = base_spec();
  spec.plan.rates.mpb_read = 1e-5;
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= 20; ++s) seeds.push_back(s);
  // Vary the victim and the crash time deterministically with the seed so
  // the sweep covers interior and leaf deaths at different pipeline phases.
  int crashes_seen = 0;
  for (const std::uint64_t seed : seeds) {
    spec.plan.seed = seed;
    spec.plan.crashes.clear();
    const CoreId victim = 1 + static_cast<CoreId>(seed % 46);  // never root
    const sim::Time at = (5 + 3 * (seed % 15)) * sim::kMicrosecond;
    spec.plan.crashes.push_back({.core = victim, .at = at});
    const harness::FaultRunOutcome out = run_fault_once(spec);
    EXPECT_TRUE(out.all_survivors_correct())
        << "seed " << seed << " victim " << victim << " at "
        << sim::to_us(at) << "us: correct=" << out.correct
        << " survivors=" << out.survivors << " gave_up=" << out.gave_up;
    crashes_seen += out.crashed;
  }
  // The victim must actually have died in (nearly) every run; a crash
  // scheduled after the broadcast finished would test nothing.
  EXPECT_GE(crashes_seen, 18);
}

TEST(FtOcBcast, SweepHelperAggregates) {
  harness::FaultRunSpec spec = base_spec(8 * 1024);
  spec.plan.rates.mpb_read = 1e-4;
  const harness::FaultSweepResult sweep =
      run_fault_sweep(spec, {101, 102, 103});
  ASSERT_EQ(sweep.outcomes.size(), 3u);
  EXPECT_EQ(sweep.runs_all_correct, 3);
}

TEST(FtOcBcast, ZeroFaultOverheadUnderFivePercent) {
  // FT vs plain OC-Bcast with no injector installed, 8 KiB..1 MiB.
  // Medians over a few iterations; the budget is the ISSUE's 5%.
  for (const std::size_t lines : {256u, 2048u, 32768u}) {
    harness::BcastRunSpec plain;
    plain.message_bytes = lines * kCacheLineBytes;
    plain.iterations = lines >= 32768u ? 2 : 3;
    plain.algorithm.kind = core::BcastKind::kOcBcast;
    harness::BcastRunSpec ft = plain;
    ft.algorithm.kind = core::BcastKind::kFtOcBcast;
    const harness::BcastRunResult rp = run_broadcast(plain);
    const harness::BcastRunResult rf = run_broadcast(ft);
    ASSERT_TRUE(rp.content_ok);
    ASSERT_TRUE(rf.content_ok);
    const double overhead =
        rf.latency_us.median() / rp.latency_us.median() - 1.0;
    EXPECT_LT(overhead, 0.05) << lines << " lines: plain "
                              << rp.latency_us.median() << "us ft "
                              << rf.latency_us.median() << "us";
  }
}

TEST(FtOcBcast, DeliveryReportsArePopulated) {
  harness::FaultRunSpec spec = base_spec(8 * 1024);
  spec.plan.seed = 41;
  spec.plan.crashes.push_back({.core = 2, .at = 5 * sim::kMicrosecond});

  scc::SccChip chip(spec.config);
  fault::FaultInjector injector(spec.plan);
  chip.add_observer(&injector);
  core::FtOcBcast bcast(chip, spec.ft);
  auto region = chip.memory(0).host_bytes(0, spec.message_bytes);
  for (std::size_t i = 0; i < region.size(); ++i) {
    region[i] = static_cast<std::byte>(i * 31 + 7);
  }
  for (CoreId c = 0; c < kNumCores; ++c) {
    chip.spawn(c, [&bcast, &spec](scc::Core& me) -> sim::Task<void> {
      co_await bcast.run(me, 0, 0, spec.message_bytes);
    });
  }
  chip.run();
  int delivered = 0;
  for (CoreId c = 0; c < kNumCores; ++c) {
    if (c == 2) continue;  // crashed
    EXPECT_TRUE(bcast.report(c).participated) << c;
    if (bcast.report(c).delivered) ++delivered;
  }
  EXPECT_EQ(delivered, kNumCores - 1);
  EXPECT_FALSE(bcast.report(2).delivered);
}

}  // namespace
}  // namespace ocb
