// Unit tests for the dissemination flag barrier.
#include <gtest/gtest.h>

#include <algorithm>

#include "rma/barrier.h"

namespace ocb::rma {
namespace {

TEST(FlagBarrier, RoundCounts) {
  scc::SccChip chip;
  EXPECT_EQ(FlagBarrier(chip, 0, 2).rounds(), 1);
  EXPECT_EQ(FlagBarrier(chip, 0, 3).rounds(), 2);
  EXPECT_EQ(FlagBarrier(chip, 0, 4).rounds(), 2);
  EXPECT_EQ(FlagBarrier(chip, 0, 48).rounds(), 6);
  EXPECT_EQ(FlagBarrier(chip, 0, 1).rounds(), 0);
}

TEST(FlagBarrier, LayoutValidation) {
  scc::SccChip chip;
  EXPECT_THROW(FlagBarrier(chip, 253, 48), PreconditionError);  // needs 6 lines
  EXPECT_NO_THROW(FlagBarrier(chip, 250, 48));
  EXPECT_THROW(FlagBarrier(chip, 0, 49), PreconditionError);
  EXPECT_THROW(FlagBarrier(chip, 0, 0), PreconditionError);
}

TEST(FlagBarrier, NobodyPassesBeforeLastArrives) {
  scc::SccChip chip;
  FlagBarrier barrier(chip, 0, 48);
  // Core 13 arrives 100 us after everyone else; nobody may leave earlier.
  constexpr sim::Duration kLate = 100 * sim::kMicrosecond;
  std::vector<sim::Time> exit_time(kNumCores, 0);
  for (CoreId c = 0; c < kNumCores; ++c) {
    chip.spawn(c, [&, c](scc::Core& me) -> sim::Task<void> {
      if (c == 13) co_await me.busy(kLate);
      co_await barrier.wait(me);
      exit_time[static_cast<std::size_t>(c)] = me.now();
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (sim::Time t : exit_time) EXPECT_GE(t, kLate);
}

TEST(FlagBarrier, ReusableAcrossEpochsWithStaggeredArrivals) {
  scc::SccChip chip;
  FlagBarrier barrier(chip, 0, 48);
  constexpr int kEpochs = 5;
  // latest_arrival[e] = the latest arrival time at barrier e;
  // exits must all be >= it.
  std::vector<sim::Time> latest_arrival(kEpochs, 0);
  std::vector<std::vector<sim::Time>> exits(
      kEpochs, std::vector<sim::Time>(kNumCores, 0));
  for (CoreId c = 0; c < kNumCores; ++c) {
    chip.spawn(c, [&, c](scc::Core& me) -> sim::Task<void> {
      for (int e = 0; e < kEpochs; ++e) {
        // Different straggler every epoch.
        const sim::Duration stagger =
            static_cast<sim::Duration>(((c * 7 + e * 13) % 48)) *
            sim::kMicrosecond;
        co_await me.busy(stagger);
        latest_arrival[static_cast<std::size_t>(e)] =
            std::max(latest_arrival[static_cast<std::size_t>(e)], me.now());
        co_await barrier.wait(me);
        exits[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)] = me.now();
      }
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (int e = 0; e < kEpochs; ++e) {
    for (sim::Time t : exits[static_cast<std::size_t>(e)]) {
      EXPECT_GE(t, latest_arrival[static_cast<std::size_t>(e)]) << "epoch " << e;
    }
  }
}

TEST(FlagBarrier, SubsetOfCores) {
  scc::SccChip chip;
  constexpr int kParties = 5;
  FlagBarrier barrier(chip, 0, kParties);
  std::vector<sim::Time> exit_time(kParties, 0);
  for (CoreId c = 0; c < kParties; ++c) {
    chip.spawn(c, [&, c](scc::Core& me) -> sim::Task<void> {
      co_await me.busy(static_cast<sim::Duration>(c) * 10 * sim::kMicrosecond);
      co_await barrier.wait(me);
      exit_time[static_cast<std::size_t>(c)] = me.now();
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (sim::Time t : exit_time) EXPECT_GE(t, 40u * sim::kMicrosecond);
}

TEST(FlagBarrier, NonPartyRejected) {
  scc::SccChip chip;
  FlagBarrier barrier(chip, 0, 4);
  bool threw = false;
  chip.spawn(7, [&](scc::Core& me) -> sim::Task<void> {
    try {
      co_await barrier.wait(me);
    } catch (const PreconditionError&) {
      threw = true;
    }
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(threw);
}

TEST(FlagBarrier, SinglePartyIsNoOp) {
  scc::SccChip chip;
  FlagBarrier barrier(chip, 0, 1);
  bool done = false;
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    co_await barrier.wait(me);
    done = true;
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace ocb::rma
