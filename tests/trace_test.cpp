// Tests for the execution-trace facility.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "rma/rma.h"
#include "scc/chip.h"
#include "scc/trace_json.h"

namespace ocb::scc {
namespace {

TEST(Trace, DisabledByDefault) {
  SccChip chip;
  EXPECT_FALSE(chip.tracing());
}

TEST(Trace, OpNamesAreDistinct) {
  EXPECT_STREQ(trace_op_name(TraceOp::kBusy), "busy");
  EXPECT_STREQ(trace_op_name(TraceOp::kMpbRead), "mpb-read");
  EXPECT_STREQ(trace_op_name(TraceOp::kMpbWrite), "mpb-write");
  EXPECT_STREQ(trace_op_name(TraceOp::kMemRead), "mem-read");
  EXPECT_STREQ(trace_op_name(TraceOp::kMemWrite), "mem-write");
  EXPECT_STREQ(trace_op_name(TraceOp::kCacheHit), "cache-hit");
}

TEST(Trace, CapturesPutTransactions) {
  SccChip chip;
  std::vector<TraceEvent> events;
  chip.set_trace_sink([&](const TraceEvent& e) { events.push_back(e); });
  chip.memory(0).host_bytes(0, 3 * kCacheLineBytes);
  chip.spawn(0, [](Core& me) -> sim::Task<void> {
    co_await rma::put_mem_to_mpb(me, rma::MpbAddr{5, 10}, 0, 3);
  });
  ASSERT_TRUE(chip.run().completed());
  // o_put busy + 3 x (mem read + mpb write).
  int busy = 0, mem_reads = 0, mpb_writes = 0;
  sim::Time last_end = 0;
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.core, 0);
    EXPECT_LE(e.start, e.end);
    EXPECT_GE(e.end, last_end) << "events arrive in completion order";
    last_end = e.end;
    switch (e.op) {
      case TraceOp::kBusy:
        ++busy;
        break;
      case TraceOp::kMemRead:
        ++mem_reads;
        break;
      case TraceOp::kMpbWrite:
        ++mpb_writes;
        EXPECT_EQ(e.target, 5);
        EXPECT_GE(e.index, 10u);
        EXPECT_LT(e.index, 13u);
        break;
      default:
        ADD_FAILURE() << "unexpected op " << trace_op_name(e.op);
    }
  }
  EXPECT_EQ(busy, 1);
  EXPECT_EQ(mem_reads, 3);
  EXPECT_EQ(mpb_writes, 3);
}

TEST(Trace, CacheHitReportedDistinctly) {
  SccChip chip;
  std::vector<TraceOp> ops;
  chip.set_trace_sink([&](const TraceEvent& e) { ops.push_back(e.op); });
  chip.spawn(0, [](Core& me) -> sim::Task<void> {
    CacheLine cl;
    co_await me.mem_read_line(0, cl);  // miss
    co_await me.mem_read_line(0, cl);  // hit
  });
  ASSERT_TRUE(chip.run().completed());
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0], TraceOp::kMemRead);
  EXPECT_EQ(ops[1], TraceOp::kCacheHit);
}

TEST(Trace, IntervalsMatchTransactionCosts) {
  SccChip chip;
  std::vector<TraceEvent> events;
  chip.set_trace_sink([&](const TraceEvent& e) { events.push_back(e); });
  chip.spawn(0, [](Core& me) -> sim::Task<void> {
    CacheLine cl;
    co_await me.mpb_read_line(3, 0, cl);  // d = 2 (tile 1)
  });
  ASSERT_TRUE(chip.run().completed());
  ASSERT_EQ(events.size(), 1u);
  const SccConfig cfg;
  EXPECT_EQ(events[0].end - events[0].start, cfg.o_mpb() + 4 * cfg.l_hop);
  EXPECT_EQ(events[0].op, TraceOp::kMpbRead);
  EXPECT_EQ(events[0].target, 3);
}

TEST(TraceJson, ExportsChromeTraceEvents) {
  SccChip chip;
  JsonTraceCollector trace;
  chip.set_trace_sink(trace.sink());
  chip.memory(0).host_bytes(0, 2 * kCacheLineBytes);
  chip.spawn(0, [](Core& me) -> sim::Task<void> {
    co_await rma::put_mem_to_mpb(me, rma::MpbAddr{5, 10}, 0, 2);
  });
  ASSERT_TRUE(chip.run().completed());
  ASSERT_FALSE(trace.events().empty());

  const std::string json = trace.to_json();
  // Structural sanity: the trace_event container, per-core thread_name
  // metadata, complete-phase events, and microsecond timestamps.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mpb-write\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mem-read\""), std::string::npos);
  // Balanced braces/brackets — catches missing commas or truncation.
  long braces = 0, brackets = 0;
  for (char ch : json) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  // One "X" event per captured transaction.
  std::size_t x_events = 0;
  for (std::size_t at = json.find("\"ph\":\"X\""); at != std::string::npos;
       at = json.find("\"ph\":\"X\"", at + 1)) {
    ++x_events;
  }
  EXPECT_EQ(x_events, trace.events().size());

  // Round-trip through write_file.
  const std::string path = ::testing::TempDir() + "ocb_trace_test.json";
  ASSERT_TRUE(trace.write_file(path));
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string back;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) back.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(back, json);

  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(TraceJson, EmptyTraceIsStillValidJson) {
  JsonTraceCollector trace;
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Trace, SinkCanBeCleared) {
  SccChip chip;
  int count = 0;
  chip.set_trace_sink([&](const TraceEvent&) { ++count; });
  chip.set_trace_sink({});
  EXPECT_FALSE(chip.tracing());
  chip.spawn(0, [](Core& me) -> sim::Task<void> { co_await me.busy(100); });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace ocb::scc
