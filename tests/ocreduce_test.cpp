// Tests for the OC-Reduce / OC-Allreduce extension.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "common/require.h"
#include "core/ocreduce.h"
#include "sim/condition.h"

namespace ocb::core {
namespace {

// Integer-valued doubles keep every operator exact regardless of
// combination order.
double input_value(CoreId core, std::size_t element) {
  return static_cast<double>((core * 37 + static_cast<int>(element) * 3) % 101) -
         50.0;
}

void seed_inputs(scc::SccChip& chip, int parties, std::size_t offset,
                 std::size_t count) {
  for (CoreId c = 0; c < parties; ++c) {
    auto w = chip.memory(c).host_bytes(offset, count * sizeof(double));
    for (std::size_t i = 0; i < count; ++i) {
      const double v = input_value(c, i);
      std::memcpy(w.data() + i * sizeof(double), &v, sizeof v);
    }
  }
}

double expected_value(ReduceOp op, int parties, std::size_t element) {
  double acc = input_value(0, element);
  for (CoreId c = 1; c < parties; ++c) {
    const double v = input_value(c, element);
    switch (op) {
      case ReduceOp::kSum:
        acc += v;
        break;
      case ReduceOp::kMin:
        acc = std::min(acc, v);
        break;
      case ReduceOp::kMax:
        acc = std::max(acc, v);
        break;
    }
  }
  return acc;
}

bool check_result(scc::SccChip& chip, CoreId where, std::size_t offset,
                  std::size_t count, ReduceOp op, int parties) {
  const auto r = chip.memory(where).host_bytes(offset, count * sizeof(double));
  for (std::size_t i = 0; i < count; ++i) {
    double v;
    std::memcpy(&v, r.data() + i * sizeof(double), sizeof v);
    if (v != expected_value(op, parties, i)) return false;
  }
  return true;
}

using Case = std::tuple<int, int, std::size_t, int>;  // parties, k, count, root
class OcReduceCases : public ::testing::TestWithParam<Case> {};

TEST_P(OcReduceCases, SumReachesRootExactly) {
  const auto [parties, k, count, root] = GetParam();
  scc::SccChip chip;
  OcReduceOptions opt;
  opt.parties = parties;
  opt.k = k;
  OcReduce reduce(chip, opt);
  seed_inputs(chip, parties, 0, count);
  for (CoreId c = 0; c < parties; ++c) {
    chip.spawn(c, [&, root, count](scc::Core& me) -> sim::Task<void> {
      co_await reduce.run(me, root, 0, 1 << 16, count, ReduceOp::kSum);
    });
  }
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(check_result(chip, root, 1 << 16, count, ReduceOp::kSum, parties));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OcReduceCases,
    ::testing::Values(
        // tiny and sub-line counts
        Case{48, 2, 1, 0}, Case{48, 2, 3, 0}, Case{48, 7, 4, 0},
        // one chunk, chunk boundary, multi-chunk pipeline
        Case{48, 2, 96 * 4, 0}, Case{48, 2, 96 * 4 + 1, 0}, Case{48, 2, 2000, 0},
        // fan-out sweep and rotated roots
        Case{48, 7, 800, 0}, Case{48, 47, 500, 0}, Case{48, 3, 500, 17},
        Case{48, 2, 777, 47},
        // small machines
        Case{2, 1, 100, 0}, Case{2, 1, 100, 1}, Case{5, 2, 333, 3},
        Case{12, 7, 1234, 5}));

TEST(OcReduce, MinAndMaxOperators) {
  for (ReduceOp op : {ReduceOp::kMin, ReduceOp::kMax}) {
    scc::SccChip chip;
    OcReduce reduce(chip, {});
    seed_inputs(chip, 48, 0, 500);
    for (CoreId c = 0; c < 48; ++c) {
      chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
        co_await reduce.run(me, 0, 0, 1 << 16, 500, op);
      });
    }
    ASSERT_TRUE(chip.run().completed());
    EXPECT_TRUE(check_result(chip, 0, 1 << 16, 500, op, 48))
        << reduce_op_name(op);
  }
}

TEST(OcReduce, NonRootOutputUntouched) {
  scc::SccChip chip;
  OcReduce reduce(chip, {});
  seed_inputs(chip, 48, 0, 64);
  for (CoreId c = 0; c < 48; ++c) {
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      co_await reduce.run(me, 0, 0, 1 << 16, 64, ReduceOp::kSum);
    });
  }
  ASSERT_TRUE(chip.run().completed());
  const auto other = chip.memory(5).host_bytes(1 << 16, 64 * sizeof(double));
  for (std::byte b : other) EXPECT_EQ(b, std::byte{0});
}

TEST(OcReduce, BackToBackAndRotatedRoots) {
  scc::SccChip chip;
  OcReduce reduce(chip, {});
  const std::vector<CoreId> roots{0, 31, 7};
  constexpr std::size_t kCount = 900;  // multi-chunk
  seed_inputs(chip, 48, 0, kCount);
  for (CoreId c = 0; c < 48; ++c) {
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      for (std::size_t r = 0; r < roots.size(); ++r) {
        co_await reduce.run(me, roots[r], 0, (1 << 16) + r * 8192, kCount,
                            ReduceOp::kSum);
      }
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (std::size_t r = 0; r < roots.size(); ++r) {
    EXPECT_TRUE(check_result(chip, roots[r], (1 << 16) + r * 8192, kCount,
                             ReduceOp::kSum, 48))
        << "round " << r;
  }
}

TEST(OcReduce, LayoutValidation) {
  scc::SccChip chip;
  OcReduceOptions bad;
  bad.k = 47;
  bad.chunk_lines = 110;
  EXPECT_THROW(OcReduce(chip, bad), PreconditionError);
  OcReduceOptions ok;
  ok.k = 47;
  ok.chunk_lines = 96;
  EXPECT_NO_THROW(OcReduce(chip, ok));
  OcReduce r(chip, {});
  EXPECT_EQ(r.consumed_line(), 0u);
  EXPECT_EQ(r.ready_line(0), 1u);
  EXPECT_EQ(r.buffer_line(0), 3u);  // k=2 default
  EXPECT_EQ(r.buffer_line(1), 99u);
  EXPECT_THROW(r.ready_line(2), PreconditionError);
}

TEST(OcReduce, SmallFanoutBeatsLargeOnThroughput) {
  // A parent ingests k chunks per chunk it emits, so reduction throughput
  // favours small k — the opposite of broadcast's latency preference.
  auto elapsed = [](int k) {
    scc::SccChip chip;
    OcReduceOptions opt;
    opt.k = k;
    OcReduce reduce(chip, opt);
    constexpr std::size_t kCount = 4096;
    seed_inputs(chip, 48, 0, kCount);
    sim::Time last = 0;
    for (CoreId c = 0; c < 48; ++c) {
      chip.spawn(c, [&, &last = last](scc::Core& me) -> sim::Task<void> {
        co_await reduce.run(me, 0, 0, 1 << 20, kCount, ReduceOp::kSum);
        last = std::max(last, me.now());
      });
    }
    EXPECT_TRUE(chip.run().completed());
    return last;
  };
  EXPECT_LT(elapsed(2), elapsed(16));
}

TEST(OcAllreduce, EveryoneGetsTheResult) {
  scc::SccChip chip;
  OcAllreduce allreduce(chip, {});
  constexpr std::size_t kCount = 700;
  seed_inputs(chip, 48, 0, kCount);
  for (CoreId c = 0; c < 48; ++c) {
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      co_await allreduce.run(me, 0, 1 << 16, kCount, ReduceOp::kSum);
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (CoreId c = 0; c < 48; ++c) {
    EXPECT_TRUE(check_result(chip, c, 1 << 16, kCount, ReduceOp::kSum, 48)) << c;
  }
}

TEST(OcAllreduce, RepeatedCallsStaySound) {
  scc::SccChip chip;
  OcAllreduce allreduce(chip, {});
  constexpr std::size_t kCount = 300;
  seed_inputs(chip, 48, 0, kCount);
  for (CoreId c = 0; c < 48; ++c) {
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      for (int round = 0; round < 3; ++round) {
        co_await allreduce.run(me, 0, (1 << 16) + round * 4096, kCount,
                               ReduceOp::kMax);
      }
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(check_result(chip, 23, (1 << 16) + round * 4096, kCount,
                             ReduceOp::kMax, 48))
        << round;
  }
}

TEST(OcReduce, ArgumentValidation) {
  scc::SccChip chip;
  OcReduce reduce(chip, {});
  bool empty = false, unaligned = false;
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    try {
      co_await reduce.run(me, 0, 0, 4096, 0, ReduceOp::kSum);
    } catch (const PreconditionError&) {
      empty = true;
    }
    try {
      co_await reduce.run(me, 0, 8, 4096, 4, ReduceOp::kSum);
    } catch (const PreconditionError&) {
      unaligned = true;
    }
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(empty);
  EXPECT_TRUE(unaligned);
}

}  // namespace
}  // namespace ocb::core
