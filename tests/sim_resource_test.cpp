// Unit tests for Timeline and ArbitratedServer: queueing, service order,
// arbitration policies, statistics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/resource.h"

namespace ocb::sim {
namespace {

TEST(Timeline, BackToBackReservationsSerialize) {
  Timeline t;
  EXPECT_EQ(t.reserve(0, 10), 10u);
  EXPECT_EQ(t.reserve(0, 10), 20u);   // queued behind the first
  EXPECT_EQ(t.reserve(5, 10), 30u);   // still queued
  EXPECT_EQ(t.reserve(100, 10), 110u);  // idle gap: starts at arrival
  EXPECT_EQ(t.next_free(), 110u);
}

TEST(Timeline, NoContentionNoDelay) {
  Timeline t;
  EXPECT_EQ(t.reserve(50, 5), 55u);
  EXPECT_EQ(t.reserve(60, 5), 65u);
}

struct ServerHarness {
  Engine engine;
  ArbitratedServer server;
  std::vector<int> completion_order;
  std::vector<Time> completion_time;

  explicit ServerHarness(Arbitration policy) : server(engine, policy) {}

  void request(Duration arrive_at, Duration service, int priority, int id) {
    engine.spawn([](ServerHarness* h, Duration at, Duration s, int prio,
                    int ident) -> Task<void> {
      co_await h->engine.sleep(at);
      co_await h->server.use(s, prio);
      h->completion_order.push_back(ident);
      h->completion_time.push_back(h->engine.now());
    }(this, arrive_at, service, priority, id));
  }
};

TEST(ArbitratedServer, FifoServesInArrivalOrder) {
  ServerHarness h(Arbitration::kFifo);
  h.request(0, 100, /*priority=*/9, 0);
  h.request(10, 100, /*priority=*/1, 1);  // higher priority but FIFO ignores it
  h.request(20, 100, /*priority=*/5, 2);
  h.engine.run();
  EXPECT_EQ(h.completion_order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(h.completion_time, (std::vector<Time>{100, 200, 300}));
}

TEST(ArbitratedServer, PositionalPrefersLowPriority) {
  ServerHarness h(Arbitration::kPositional);
  h.request(0, 100, 5, 0);   // starts immediately (server idle)
  h.request(10, 100, 9, 1);  // queued
  h.request(20, 100, 1, 2);  // queued, higher priority than 1
  h.engine.run();
  EXPECT_EQ(h.completion_order, (std::vector<int>{0, 2, 1}));
}

TEST(ArbitratedServer, PositionalTieBreaksByArrival) {
  ServerHarness h(Arbitration::kPositional);
  h.request(0, 100, 0, 0);
  h.request(10, 50, 3, 1);
  h.request(20, 50, 3, 2);
  h.engine.run();
  EXPECT_EQ(h.completion_order, (std::vector<int>{0, 1, 2}));
}

TEST(ArbitratedServer, IdleServerServesImmediately) {
  ServerHarness h(Arbitration::kFifo);
  h.request(50, 10, 0, 0);
  h.engine.run();
  EXPECT_EQ(h.completion_time, (std::vector<Time>{60}));
}

TEST(ArbitratedServer, StatsAccumulate) {
  ServerHarness h(Arbitration::kFifo);
  h.request(0, 10, 0, 0);
  h.request(0, 20, 0, 1);
  h.engine.run();
  EXPECT_EQ(h.server.total_served(), 2u);
  EXPECT_EQ(h.server.busy_time(), 30u);
  EXPECT_FALSE(h.server.busy());
  EXPECT_EQ(h.server.queue_length(), 0u);
}

TEST(ArbitratedServer, ImmediateReissueQueuesBehindWaiters) {
  // A requester that re-requests the moment its service completes must not
  // starve a queued waiter.
  Engine e;
  ArbitratedServer srv(e, Arbitration::kFifo);
  std::vector<int> order;
  e.spawn([](Engine&, ArbitratedServer& s, std::vector<int>* o) -> Task<void> {
    co_await s.use(10, 0);
    o->push_back(0);
    co_await s.use(10, 0);  // re-request immediately
    o->push_back(2);
  }(e, srv, &order));
  e.spawn([](Engine& eng, ArbitratedServer& s, std::vector<int>* o) -> Task<void> {
    co_await eng.sleep(5);  // arrives while first request is in service
    co_await s.use(10, 0);
    o->push_back(1);
  }(e, srv, &order));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ArbitratedServer, ClosedLoopThroughputIsServiceBound) {
  // n requesters in closed loop (reissue on completion): the server runs at
  // 100% utilization; each requester gets ~1/n of the service slots.
  Engine e;
  ArbitratedServer srv(e, Arbitration::kFifo);
  constexpr int kN = 4;
  constexpr Duration kService = 10;
  constexpr int kRounds = 100;
  std::vector<Time> finish(kN, 0);
  for (int i = 0; i < kN; ++i) {
    e.spawn([](ArbitratedServer& s, std::vector<Time>* f, Engine& eng,
               int id) -> Task<void> {
      for (int r = 0; r < kRounds; ++r) co_await s.use(kService, 0);
      (*f)[static_cast<std::size_t>(id)] = eng.now();
    }(srv, &finish, e, i));
  }
  e.run();
  // Perfect round-robin: requester i's last service ends kService apart,
  // all within the fully-utilized window.
  const Time total = kN * kService * kRounds;
  for (Time t : finish) {
    EXPECT_GT(t, total - kN * kService);
    EXPECT_LE(t, total);
  }
  EXPECT_EQ(srv.busy_time(), total);
}

}  // namespace
}  // namespace ocb::sim
