// Tests for inter-core interrupts and the parallel IPI notification tree.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/require.h"
#include "core/ipi_notifier.h"
#include "scc/chip.h"

namespace ocb {
namespace {

TEST(Interrupts, DeliveryWakesWaiter) {
  scc::SccChip chip;
  sim::Time woken_at = 0, sent_at = 0;
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    co_await me.busy(10 * sim::kMicrosecond);
    sent_at = me.now();
    co_await me.send_interrupt(47);
  });
  chip.spawn(47, [&](scc::Core& me) -> sim::Task<void> {
    co_await me.wait_interrupt();
    woken_at = me.now();
  });
  ASSERT_TRUE(chip.run().completed());
  const scc::SccConfig cfg;
  // Wake = sender overhead + d hops + service + handler entry.
  EXPECT_GT(woken_at, sent_at);
  EXPECT_GE(woken_at - sent_at, cfg.o_irq_entry);
  EXPECT_LT(woken_at - sent_at, cfg.o_irq_entry + 1 * sim::kMicrosecond);
}

TEST(Interrupts, SendCompletionMatchesCostModel) {
  scc::SccChip chip;
  sim::Duration elapsed = 0;
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    const sim::Time t0 = me.now();
    co_await me.send_interrupt(47);  // d = 9
    elapsed = me.now() - t0;
  });
  chip.spawn(47, [](scc::Core& me) -> sim::Task<void> {
    co_await me.wait_interrupt();
  });
  ASSERT_TRUE(chip.run().completed());
  const scc::SccConfig cfg;
  EXPECT_EQ(elapsed, cfg.o_ipi_send + 18 * cfg.l_hop + cfg.t_ipi_service);
}

TEST(Interrupts, CountedNotCoalesced) {
  scc::SccChip chip;
  int taken = 0;
  chip.spawn(1, [&](scc::Core& me) -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) co_await me.send_interrupt(2);
  });
  chip.spawn(2, [&](scc::Core& me) -> sim::Task<void> {
    // Give all three time to land, then drain.
    co_await me.busy(50 * sim::kMicrosecond);
    EXPECT_EQ(me.interrupts_pending(), 3);
    for (int i = 0; i < 3; ++i) {
      co_await me.wait_interrupt();
      ++taken;
    }
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_EQ(taken, 3);
}

TEST(Interrupts, PollConsumesAtMostOne) {
  scc::SccChip chip;
  bool first = false, second = false, third = false;
  chip.spawn(1, [](scc::Core& me) -> sim::Task<void> {
    co_await me.send_interrupt(2);
  });
  chip.spawn(2, [&](scc::Core& me) -> sim::Task<void> {
    co_await me.busy(20 * sim::kMicrosecond);
    first = co_await me.poll_interrupt();
    second = co_await me.poll_interrupt();
    third = me.interrupts_pending() == 0;
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
  EXPECT_TRUE(third);
}

TEST(Interrupts, UnservedInterruptLeavesWaiterStalled) {
  scc::SccChip chip;
  chip.spawn(5, [](scc::Core& me) -> sim::Task<void> { co_await me.wait_interrupt(); });
  const sim::RunResult r = chip.run();
  EXPECT_EQ(r.stalled_processes, 1u);
}

TEST(IpiNotifier, WakesEveryCoreExactlyOnce) {
  scc::SccChip chip;
  core::IpiNotifier notifier;
  std::array<int, kNumCores> woken{};
  std::array<sim::Time, kNumCores> when{};
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    co_await me.busy(5 * sim::kMicrosecond);
    co_await notifier.notify(me);
  });
  for (CoreId c = 1; c < kNumCores; ++c) {
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      co_await notifier.await(me, 0);
      ++woken[static_cast<std::size_t>(me.id())];
      when[static_cast<std::size_t>(me.id())] = me.now();
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (CoreId c = 1; c < kNumCores; ++c) {
    EXPECT_EQ(woken[static_cast<std::size_t>(c)], 1) << c;
    EXPECT_EQ(chip.core(c).interrupts_pending(), 0) << c;
  }
  // log2 depth: the last wake should land within ~depth * (send + handler).
  const sim::Time last = *std::max_element(when.begin() + 1, when.end());
  const scc::SccConfig cfg;
  EXPECT_LT(last, 5 * sim::kMicrosecond +
                      7 * (cfg.o_irq_entry + cfg.o_ipi_send + 200 * sim::kNanosecond));
}

TEST(IpiNotifier, TryAwaitInterleavesWithCompute) {
  scc::SccChip chip;
  core::IpiNotifier notifier(8);
  std::array<int, 8> quanta{};
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    co_await me.busy(200 * sim::kMicrosecond);
    co_await notifier.notify(me);
  });
  for (CoreId c = 1; c < 8; ++c) {
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      for (;;) {
        const bool woken = co_await notifier.try_await(me, 0);
        if (woken) break;
        co_await me.busy(10 * sim::kMicrosecond);
        ++quanta[static_cast<std::size_t>(me.id())];
      }
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (CoreId c = 1; c < 8; ++c) {
    EXPECT_GT(quanta[static_cast<std::size_t>(c)], 10)
        << "worker " << c << " must have computed while waiting";
  }
}

TEST(IpiNotifier, RejectsBadArguments) {
  scc::SccChip chip;
  EXPECT_THROW(core::IpiNotifier(1), PreconditionError);
  // 49 parties is legal at construction — the notifier has no chip to bound
  // against, and a 49-core topology exists; send_interrupt validates each
  // target against the chip at use.
  EXPECT_NO_THROW(core::IpiNotifier(49));
  core::IpiNotifier notifier(4);
  bool threw = false;
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    try {
      co_await notifier.await(me, 0);  // root may not await itself
    } catch (const PreconditionError&) {
      threw = true;
    }
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace ocb
