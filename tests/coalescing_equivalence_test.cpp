// The equivalence gate for the coalesced RMA fast path (scc/bulk.h).
//
// BulkOp's contract is *zero timestamp drift*: with coalescing on, every
// run must produce exactly the timeline the per-line reference path
// produces — same completion times, same per-iteration latencies, same
// delivered bytes — from never-more (busy chip: parity) and sometimes far
// fewer (quiescent chip: closed-form) engine events. These tests run the
// paper's collectives both ways and compare. If any fold in bulk.cpp ever
// becomes inexact, this is the suite that goes red.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/ocreduce.h"
#include "harness/measurement.h"
#include "rma/rma.h"
#include "scc/chip.h"

namespace ocb {
namespace {

harness::BcastRunResult run_with(core::BcastKind kind, int k, bool coalescing,
                                 std::size_t lines) {
  harness::BcastRunSpec spec;
  spec.algorithm.kind = kind;
  spec.algorithm.k = k;
  spec.message_bytes = lines * kCacheLineBytes;
  spec.iterations = 3;
  spec.warmup = 1;
  spec.config.coalescing = coalescing;
  return harness::run_broadcast(spec);
}

void expect_equivalent(core::BcastKind kind, int k, std::size_t lines) {
  const harness::BcastRunResult on = run_with(kind, k, true, lines);
  const harness::BcastRunResult off = run_with(kind, k, false, lines);

  // Identical timeline: the final simulated instant and every measured
  // iteration latency agree to the picosecond.
  EXPECT_EQ(on.end_time, off.end_time);
  ASSERT_EQ(on.latency_us.count(), off.latency_us.count());
  for (std::size_t i = 0; i < on.latency_us.count(); ++i) {
    EXPECT_DOUBLE_EQ(on.latency_us.samples()[i], off.latency_us.samples()[i])
        << "iteration " << i;
  }

  // Identical payloads (run_broadcast byte-compares every delivery).
  EXPECT_TRUE(on.content_ok);
  EXPECT_TRUE(off.content_ok);

  // On a busy chip the fast path keeps event parity with the reference
  // (required for exactness — see scc/bulk.h); only quiescent ops collapse
  // events, so never more, sometimes fewer.
  EXPECT_LE(on.events, off.events);
}

TEST(CoalescingEquivalence, OcBcast) {
  expect_equivalent(core::BcastKind::kOcBcast, 7, 210);
}

TEST(CoalescingEquivalence, FtOcBcastWithoutFaults) {
  // FT-OC-Bcast with no fault hook installed stays fast-path eligible.
  expect_equivalent(core::BcastKind::kFtOcBcast, 7, 130);
}

TEST(CoalescingEquivalence, ScatterAllgather) {
  expect_equivalent(core::BcastKind::kScatterAllgather, 7, 192);
}

// The quiescent closed-form regime: a single actor on an otherwise idle
// chip must produce the per-line timeline from roughly one event per op
// instead of ~8 per line.
TEST(CoalescingEquivalence, QuiescentOpsCollapseEvents) {
  sim::Time end_time[2] = {0, 0};
  std::uint64_t events[2] = {0, 0};
  for (int arm = 0; arm < 2; ++arm) {
    scc::SccConfig cfg;
    cfg.coalescing = arm == 0;
    scc::SccChip chip(cfg);
    chip.spawn(5, [](scc::Core& me) -> sim::Task<void> {
      for (int rep = 0; rep < 4; ++rep) {
        co_await rma::put_mpb_to_mpb(me, rma::MpbAddr{30, 0}, 0, 64);
        co_await rma::get_mpb_to_mem(me, 64 * kCacheLineBytes * rep,
                                     rma::MpbAddr{30, 0}, 64);
      }
    });
    const sim::RunResult run = chip.run();
    ASSERT_TRUE(run.completed());
    end_time[arm] = run.end_time;
    events[arm] = run.events_processed;
  }
  EXPECT_EQ(end_time[0], end_time[1]);
  EXPECT_LT(events[0] * 10, events[1]);  // at least 10x fewer events
}

// OC-Reduce is not covered by run_broadcast: drive a chip pair by hand and
// compare the end-of-run clock plus the root's reduced output bytes.
TEST(CoalescingEquivalence, OcReduce) {
  constexpr std::size_t kCount = 256;  // 64 lines of doubles
  const std::size_t out_off = kCount * sizeof(double);

  sim::Time end_time[2] = {0, 0};
  std::uint64_t events[2] = {0, 0};
  std::vector<std::byte> output[2];
  for (int arm = 0; arm < 2; ++arm) {
    scc::SccConfig cfg;
    cfg.coalescing = arm == 0;
    scc::SccChip chip(cfg);
    core::OcReduce reduce(chip);
    for (CoreId c = 0; c < kNumCores; ++c) {
      auto region = chip.memory(c).host_bytes(0, kCount * sizeof(double));
      for (std::size_t i = 0; i < kCount; ++i) {
        const double v = static_cast<double>((c * 977 + i * 31) % 4096);
        std::memcpy(region.data() + i * sizeof(double), &v, sizeof(double));
      }
    }
    for (CoreId c = 0; c < kNumCores; ++c) {
      chip.spawn(c, [&reduce, out_off](scc::Core& me) -> sim::Task<void> {
        co_await reduce.run(me, 0, 0, out_off, kCount, core::ReduceOp::kSum);
      });
    }
    const sim::RunResult run = chip.run();
    ASSERT_TRUE(run.completed());
    end_time[arm] = run.end_time;
    events[arm] = run.events_processed;
    const auto got = chip.memory(0).host_bytes(out_off, kCount * sizeof(double));
    output[arm].assign(got.begin(), got.end());
  }
  EXPECT_EQ(end_time[0], end_time[1]);
  EXPECT_EQ(output[0], output[1]);
  EXPECT_LE(events[0], events[1]);
}

}  // namespace
}  // namespace ocb
