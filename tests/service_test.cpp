// Tests for ocb::svc — traffic generation, the broadcast service, the MPB
// lease safety gate, and the service's SLO metrics/trace exports.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/checker.h"
#include "coll/registry.h"
#include "common/require.h"
#include "scc/chip.h"
#include "scc/trace_json.h"
#include "svc/service.h"
#include "svc/traffic.h"

namespace ocb {
namespace {

// --- traffic generation -----------------------------------------------------

TEST(Traffic, DeterministicAndSorted) {
  svc::TrafficSpec spec;
  spec.requests = 64;
  spec.seed = 7;
  const auto a = svc::generate_requests(spec);
  const auto b = svc::generate_requests(spec);
  ASSERT_EQ(a.size(), 64u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].root, b[i].root);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_EQ(a[i].id, static_cast<int>(i));
    if (i > 0) {
      EXPECT_GE(a[i].arrival, a[i - 1].arrival);
    }
  }
  svc::TrafficSpec other = spec;
  other.seed = 8;
  const auto c = svc::generate_requests(other);
  bool differs = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    differs = differs || c[i].arrival != a[i].arrival || c[i].root != a[i].root;
  }
  EXPECT_TRUE(differs) << "different seeds should produce different streams";
}

TEST(Traffic, HonorsTheSpec) {
  svc::TrafficSpec spec;
  spec.requests = 200;
  spec.mean_gap_ns = 10'000;
  spec.sizes = {{64, 3}, {2048, 1}};
  spec.parties = 8;
  spec.seed = 42;
  const auto reqs = svc::generate_requests(spec);
  std::uint64_t small = 0;
  for (const svc::Request& r : reqs) {
    EXPECT_TRUE(r.bytes == 64 || r.bytes == 2048);
    EXPECT_GE(r.root, 0);
    EXPECT_LT(r.root, 8);
    small += r.bytes == 64 ? 1 : 0;
  }
  EXPECT_GT(small, 100u) << "3:1 weights should favor the small class";
  EXPECT_LT(small, 200u);
  // Mean gap within a factor of two of the spec (199 gaps is plenty).
  const double mean_gap =
      sim::to_ns(reqs.back().arrival) / static_cast<double>(spec.requests - 1);
  EXPECT_GT(mean_gap, 5'000.0);
  EXPECT_LT(mean_gap, 20'000.0);

  svc::TrafficSpec pinned = spec;
  pinned.fixed_root = 3;
  for (const svc::Request& r : svc::generate_requests(pinned)) {
    EXPECT_EQ(r.root, 3);
  }
}

// --- the lease safety gate --------------------------------------------------

// Two OC-Bcast instances with overlapping MPB layouts (both at base line 0)
// running concurrently from different roots: the exact failure mode the
// slot allocator exists to prevent. The run must be FLAGGED — checker
// violations, corrupted delivery, or a stall — rather than quietly "work".
TEST(LeaseGate, OverlappingCollectivesAreFlagged) {
  scc::SccChip chip;
  check::RaceChecker checker(chip);
  chip.add_observer(&checker);

  const int parties = 16;
  coll::Params params;
  params.parties = parties;
  params.k = 3;
  params.chunk_lines = 16;
  auto first = coll::make("ocbcast", chip, params);
  auto second = coll::make("ocbcast", chip, params);

  const std::size_t bytes = 4096;  // 128 lines = 8 chunks: plenty of reuse
  const std::size_t offset_a = 0;
  const std::size_t offset_b = 1 << 16;
  for (int i = 0; i < 64; ++i) {
    chip.memory(0).host_bytes(offset_a, bytes)[static_cast<std::size_t>(i)] =
        std::byte{0xA0};
    chip.memory(1).host_bytes(offset_b, bytes)[static_cast<std::size_t>(i)] =
        std::byte{0xB0};
  }

  for (CoreId c = 0; c < parties; ++c) {
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      co_await first->run(me, 0, offset_a, bytes);
    });
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      co_await second->run(me, 1, offset_b, bytes);
    });
  }
  // Cap the run: trampled flags can also deadlock the protocols, which is
  // a flagged outcome too, not a test failure.
  const sim::RunResult rr = chip.run(/*max_events=*/50'000'000);

  bool corrupted = false;
  for (CoreId c = 0; c < parties; ++c) {
    if (c != 0) {
      const auto want = chip.memory(0).host_bytes(offset_a, bytes);
      const auto got = chip.memory(c).host_bytes(offset_a, bytes);
      corrupted = corrupted || !std::equal(want.begin(), want.end(), got.begin());
    }
    if (c != 1) {
      const auto want = chip.memory(1).host_bytes(offset_b, bytes);
      const auto got = chip.memory(c).host_bytes(offset_b, bytes);
      corrupted = corrupted || !std::equal(want.begin(), want.end(), got.begin());
    }
  }
  EXPECT_TRUE(checker.total_detected() > 0 || corrupted || !rr.completed())
      << "overlapping layouts went undetected: violations="
      << checker.total_detected() << " corrupted=" << corrupted
      << " completed=" << rr.completed();
  // The primary signal: the checker sees the unsynchronized sharing.
  EXPECT_GT(checker.total_detected(), 0u);
}

// The same concurrency through the service's slot allocator: byte-correct
// and checker-silent.
TEST(LeaseGate, SlottedCollectivesAreRaceFreeAndCorrect) {
  svc::ServiceConfig config;
  config.parties = 16;
  config.k = 3;
  config.slots = 2;
  config.slot_lines = 120;
  config.check = true;

  svc::BroadcastService service(config);
  svc::Request r0;
  r0.id = 0;
  r0.arrival = 0;
  r0.root = 0;
  r0.bytes = 4096;
  svc::Request r1 = r0;
  r1.id = 1;
  r1.root = 1;
  service.submit(r0);
  service.submit(r1);

  const svc::ServiceMetrics m = service.run();
  EXPECT_EQ(m.completed, 2u);
  EXPECT_TRUE(m.content_ok);
  EXPECT_EQ(m.race_violations, 0u) << service.checker()->report();

  // Both requests really were in flight at once (disjoint slots, not
  // accidental serialization).
  const auto& out = service.outcomes();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].slot, 0);
  EXPECT_EQ(out[1].slot, 1);
  EXPECT_LT(out[0].start, out[1].completion);
  EXPECT_LT(out[1].start, out[0].completion);
}

// --- slot recycling ---------------------------------------------------------

// One slot, three back-to-back requests: each reuses the same MPB lines.
// Completion proves the scrub works (a stale flag value would satisfy the
// next collective's waits early or deadlock it), and checker silence
// proves the generation-keyed handoff edge orders occupants.
TEST(Service, RecycledSlotIsScrubbedAndOrdered) {
  svc::ServiceConfig config;
  config.parties = 16;
  config.k = 3;
  config.slots = 1;
  config.slot_lines = 120;
  config.check = true;

  svc::BroadcastService service(config);
  for (int i = 0; i < 3; ++i) {
    svc::Request r;
    r.id = i;
    r.arrival = 0;
    r.root = static_cast<CoreId>(i);  // root changes every grant
    r.bytes = 2048;
    service.submit(r);
  }
  const svc::ServiceMetrics m = service.run();
  EXPECT_EQ(m.completed, 3u);
  EXPECT_TRUE(m.content_ok);
  EXPECT_EQ(m.race_violations, 0u) << service.checker()->report();
  EXPECT_EQ(service.allocator().generation(0), 3u);

  // Strictly serialized through the single slot.
  const auto& out = service.outcomes();
  EXPECT_LE(out[0].completion, out[1].start);
  EXPECT_LE(out[1].completion, out[2].start);
}

// --- admission control and scheduling policy --------------------------------

TEST(Service, BoundedQueueRejectsOverflow) {
  svc::ServiceConfig config;
  config.parties = 16;
  config.k = 3;
  config.slots = 1;
  config.slot_lines = 200;
  config.max_queue = 1;

  svc::BroadcastService service(config);
  for (int i = 0; i < 6; ++i) {
    svc::Request r;
    r.id = i;
    r.arrival = 0;
    r.root = 0;
    r.bytes = 1024;
    service.submit(r);
  }
  const svc::ServiceMetrics m = service.run();
  // Arrival order: r0 is dispatched straight into the slot, r1 queues, and
  // r2..r5 find the queue at its bound.
  EXPECT_EQ(m.submitted, 6u);
  EXPECT_EQ(m.completed, 2u);
  EXPECT_EQ(m.rejected, 4u);
  EXPECT_EQ(m.max_queue_depth, 1u);
  EXPECT_TRUE(service.outcomes()[0].content_ok);
  EXPECT_TRUE(service.outcomes()[5].rejected);
}

TEST(Service, SmallestFirstOvertakesFifo) {
  auto run_with = [](svc::SchedPolicy policy) {
    svc::ServiceConfig config;
    config.parties = 16;
    config.k = 3;
    config.slots = 1;
    config.slot_lines = 200;
    config.policy = policy;
    svc::BroadcastService service(config);
    svc::Request big0;
    big0.id = 0;
    big0.arrival = 0;
    big0.root = 0;
    big0.bytes = 32768;
    svc::Request big1 = big0;
    big1.id = 1;
    big1.arrival = sim::kMicrosecond;
    svc::Request small = big0;
    small.id = 2;
    small.arrival = 2 * sim::kMicrosecond;
    small.bytes = 64;
    service.submit(big0);
    service.submit(big1);
    service.submit(small);
    service.run();
    return std::vector<svc::RequestOutcome>(service.outcomes());
  };

  const auto fifo = run_with(svc::SchedPolicy::kFifo);
  EXPECT_LT(fifo[1].start, fifo[2].start) << "fifo serves in arrival order";

  const auto sjf = run_with(svc::SchedPolicy::kSmallestFirst);
  EXPECT_LT(sjf[2].start, sjf[1].start)
      << "smallest-first lets the 64B request overtake the queued 32KiB one";
  EXPECT_LT(sjf[2].completion - sjf[2].arrival,
            fifo[2].completion - fifo[2].arrival)
      << "the small request's latency improves";
}

// --- determinism ------------------------------------------------------------

TEST(Service, SameSeedSameMetrics) {
  svc::ServiceConfig config;
  config.parties = 16;
  config.k = 3;
  config.slots = 2;
  config.slot_lines = 100;

  svc::TrafficSpec traffic;
  traffic.requests = 12;
  traffic.mean_gap_ns = 20'000;
  traffic.sizes = {{64, 2}, {4096, 1}};
  traffic.parties = config.parties;
  traffic.seed = 99;

  const svc::ServiceMetrics a = svc::run_service(config, traffic);
  const svc::ServiceMetrics b = svc::run_service(config, traffic);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.latency_ns.p99(), b.latency_ns.p99());
  EXPECT_TRUE(a.content_ok);
  EXPECT_EQ(a.completed + a.rejected, a.submitted);
}

// --- metrics and trace export -----------------------------------------------

TEST(Service, MetricsJsonAndTraceSpans) {
  svc::ServiceConfig config;
  config.parties = 16;
  config.k = 3;
  config.slots = 2;
  config.slot_lines = 100;

  scc::JsonTraceCollector trace;
  svc::BroadcastService service(config);
  service.set_trace(&trace);
  for (int i = 0; i < 2; ++i) {
    svc::Request r;
    r.id = i;
    r.arrival = static_cast<sim::Time>(i) * sim::kMicrosecond;
    r.root = static_cast<CoreId>(i);
    r.bytes = 1024;
    service.submit(r);
  }
  const svc::ServiceMetrics m = service.run();
  EXPECT_EQ(m.completed, 2u);

  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"schema\":\"ocb-service-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"content_ok\":true"), std::string::npos);
  EXPECT_GT(m.latency_ns.p50(), 0u);
  EXPECT_GE(m.latency_ns.p999(), m.latency_ns.p50());

  ASSERT_EQ(trace.spans().size(), 2u);
  const std::string doc = trace.to_json();
  EXPECT_NE(doc.find("\"cat\":\"service\""), std::string::npos);
  EXPECT_NE(doc.find("req 0"), std::string::npos);
  EXPECT_NE(doc.find("req 1"), std::string::npos);
  EXPECT_NE(doc.find("\"queue_ns\""), std::string::npos);
}

TEST(Service, PreconditionsAreEnforced) {
  svc::ServiceConfig bad;
  bad.algorithm = "binomial";  // not slot-aware
  EXPECT_THROW(svc::BroadcastService{bad}, PreconditionError);

  svc::ServiceConfig tiny;
  tiny.slot_lines = 10;  // cannot fit flags + fence + a buffer
  EXPECT_THROW(svc::BroadcastService{tiny}, PreconditionError);

  svc::ServiceConfig huge;
  huge.slots = 3;
  huge.slot_lines = 90;  // 270 + 3 handoff lines > 256
  EXPECT_THROW(svc::BroadcastService{huge}, PreconditionError);

  svc::ServiceConfig ok;
  svc::BroadcastService service(ok);
  EXPECT_THROW(service.run(), PreconditionError) << "no requests submitted";
}

// --- smoke: the CI `service-smoke` target runs exactly this suite -----------

TEST(ServiceSmoke, MixedLoadAllFortyEightCores) {
  svc::ServiceConfig config;
  config.parties = kNumCores;
  config.k = 7;
  config.slots = 2;
  config.slot_lines = 120;

  svc::TrafficSpec traffic;
  traffic.requests = 16;
  traffic.mean_gap_ns = 30'000;
  traffic.sizes = {{kCacheLineBytes, 2}, {4096, 2}, {32768, 1}};
  traffic.parties = config.parties;
  traffic.seed = 2026;

  const svc::ServiceMetrics m = svc::run_service(config, traffic);
  EXPECT_EQ(m.submitted, 16u);
  EXPECT_EQ(m.completed + m.rejected, m.submitted);
  EXPECT_EQ(m.rejected, 0u) << "default queue bound fits 16 requests";
  EXPECT_TRUE(m.content_ok);
  EXPECT_GT(m.latency_ns.p50(), 0u);
  EXPECT_GE(m.latency_ns.p999(), m.latency_ns.p99());
  EXPECT_GT(m.throughput_mbps(), 0.0);
}

TEST(ServiceSmoke, FaultTolerantAlgorithmServes) {
  svc::ServiceConfig config;
  config.algorithm = "ft-ocbcast";
  config.parties = kNumCores;
  config.k = 7;
  config.slots = 2;
  config.slot_lines = 120;

  svc::TrafficSpec traffic;
  traffic.requests = 6;
  traffic.mean_gap_ns = 50'000;
  traffic.sizes = {{4096, 1}};
  traffic.parties = config.parties;
  traffic.seed = 5;

  const svc::ServiceMetrics m = svc::run_service(config, traffic);
  EXPECT_EQ(m.completed, 6u);
  EXPECT_TRUE(m.content_ok);
}

}  // namespace
}  // namespace ocb
