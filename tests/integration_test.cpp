// Cross-module integration tests: simulator vs. analytical model agreement,
// the paper's qualitative algorithm ordering on the simulator, determinism,
// and end-to-end properties that span harness + core + model.
#include <gtest/gtest.h>

#include "harness/measurement.h"
#include "harness/paper_data.h"
#include "model/broadcast_model.h"
#include "model/fit.h"

namespace ocb {
namespace {

harness::BcastRunResult run(core::BcastKind kind, int k, std::size_t lines,
                            int iterations = 2) {
  harness::BcastRunSpec spec;
  spec.algorithm.kind = kind;
  spec.algorithm.k = k;
  spec.message_bytes = lines * kCacheLineBytes;
  spec.iterations = iterations;
  spec.warmup = 1;
  const harness::BcastRunResult r = run_broadcast(spec);
  EXPECT_TRUE(r.content_ok);
  return r;
}

TEST(SimVsModel, OcBcastLatencyWithinModelEnvelope) {
  // The simulator adds real distances (d in 1..9 instead of the model's
  // d = 1) and real contention; the paper's §6.3 found measured ≈ modeled,
  // slightly above. Accept simulated within [~model, model * 1.35].
  model::BroadcastModel m(model::ModelParams::paper(), {});
  for (std::size_t lines : {1u, 32u, 96u, 192u}) {
    const double sim_us = run(core::BcastKind::kOcBcast, 7, lines).latency_us.mean();
    const double model_us = sim::to_us(m.ocbcast_latency(lines, 7));
    EXPECT_GE(sim_us, model_us * 0.98) << lines;
    EXPECT_LE(sim_us, model_us * 1.35) << lines;
  }
}

TEST(SimVsModel, BinomialLatencyWithinModelEnvelope) {
  model::BroadcastModel m(model::ModelParams::paper(), {});
  for (std::size_t lines : {1u, 96u}) {
    const double sim_us =
        run(core::BcastKind::kBinomial, 7, lines).latency_us.mean();
    const double model_us = sim::to_us(m.binomial_latency(lines));
    EXPECT_GE(sim_us, model_us * 0.95) << lines;
    EXPECT_LE(sim_us, model_us * 1.35) << lines;
  }
}

TEST(PaperOrdering, OcBcastBeatsBinomialOnLatency) {
  // Fig. 8a: at least 27% improvement at 1 line; grows with size.
  const double oc1 = run(core::BcastKind::kOcBcast, 7, 1).latency_us.mean();
  const double bi1 = run(core::BcastKind::kBinomial, 7, 1).latency_us.mean();
  EXPECT_LT(oc1, bi1);
  const double oc192 = run(core::BcastKind::kOcBcast, 7, 192).latency_us.mean();
  const double bi192 = run(core::BcastKind::kBinomial, 7, 192).latency_us.mean();
  EXPECT_LT(oc192 / bi192, oc1 / bi1) << "gap grows with size";
}

TEST(PaperOrdering, OcBcastThroughputSeveralTimesScatterAllgather) {
  // Fig. 8b at a pipeline-filling size (kept moderate for test runtime).
  const double oc =
      run(core::BcastKind::kOcBcast, 7, 4096, 2).throughput_mbps;
  const double sag =
      run(core::BcastKind::kScatterAllgather, 7, 4096, 2).throughput_mbps;
  EXPECT_GT(oc / sag, 2.0);
}

TEST(PaperOrdering, K47ThroughputSuffersFromContention) {
  // §6.2.2: k=47 lands measurably below its contention-free model value;
  // k=7 stays closer to its own.
  model::BroadcastModel m(model::ModelParams::paper(), {});
  const double k47_sim =
      run(core::BcastKind::kOcBcast, 47, 4096, 2).throughput_mbps;
  const double k47_model = m.ocbcast_throughput_mbps(47, 4096);
  const double k7_sim = run(core::BcastKind::kOcBcast, 7, 4096, 2).throughput_mbps;
  const double k7_model = m.ocbcast_throughput_mbps(7, 4096);
  EXPECT_LT(k47_sim / k47_model, k7_sim / k7_model);
}

TEST(Determinism, IdenticalRunsProduceIdenticalTimings) {
  const auto a = run(core::BcastKind::kOcBcast, 7, 96, 3);
  const auto b = run(core::BcastKind::kOcBcast, 7, 96, 3);
  ASSERT_EQ(a.latency_us.samples().size(), b.latency_us.samples().size());
  for (std::size_t i = 0; i < a.latency_us.samples().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.latency_us.samples()[i], b.latency_us.samples()[i]);
  }
}

TEST(Determinism, JitterChangesTimingsButNotContent) {
  harness::BcastRunSpec spec;
  spec.message_bytes = 96 * kCacheLineBytes;
  spec.iterations = 2;
  const double base = run_broadcast(spec).latency_us.mean();
  spec.config.jitter = 30 * sim::kNanosecond;
  const harness::BcastRunResult jittered = run_broadcast(spec);
  EXPECT_TRUE(jittered.content_ok);
  EXPECT_NE(jittered.latency_us.mean(), base);
  EXPECT_GT(jittered.latency_us.mean(), base);  // jitter only adds time
}

TEST(SimVsModel, FitRecoversTable1FromSimulatedMeasurements) {
  // End-to-end calibration check: measure the four op kinds on the
  // simulator at several (m, d), fit, and recover Table 1 exactly.
  scc::SccConfig cfg;
  cfg.cache_enabled = false;
  std::vector<model::OpSample> samples;
  for (std::size_t m : {1u, 4u, 16u}) {
    for (int d : {1, 3, 5, 9}) {
      const auto [actor, target] = harness::core_pair_at_mpb_distance(d);
      samples.push_back({model::OpSample::Kind::kGetToMpb, m, d, 1,
                         harness::measure_op_completion_us(
                             cfg, harness::OpKind::kGetMpbToMpb, actor, target, m, 2)});
      samples.push_back({model::OpSample::Kind::kPutFromMpb, m, 1, d,
                         harness::measure_op_completion_us(
                             cfg, harness::OpKind::kPutMpbToMpb, actor, target, m, 2)});
    }
    for (int d : {1, 2, 3, 4}) {
      const CoreId c = harness::core_at_mem_distance(d);
      // Against the own MPB: d_dst/d_src = 1 for the MPB side.
      samples.push_back({model::OpSample::Kind::kPutFromMem, m, d, 1,
                         harness::measure_op_completion_us(
                             cfg, harness::OpKind::kPutMemToMpb, c, c, m, 2)});
      samples.push_back({model::OpSample::Kind::kGetToMem, m, 1, d,
                         harness::measure_op_completion_us(
                             cfg, harness::OpKind::kGetMpbToMem, c, c, m, 2)});
    }
  }
  const model::FitResult fit = model::fit_model_params(samples);
  const model::ModelParams paper = model::ModelParams::paper();
  EXPECT_EQ(fit.params.l_hop, paper.l_hop);
  EXPECT_EQ(fit.params.o_mpb, paper.o_mpb);
  EXPECT_EQ(fit.params.o_mem_r, paper.o_mem_r);
  EXPECT_EQ(fit.params.o_mem_w, paper.o_mem_w);
  EXPECT_EQ(fit.params.o_put_mpb, paper.o_put_mpb);
  EXPECT_EQ(fit.params.o_get_mpb, paper.o_get_mpb);
  EXPECT_EQ(fit.params.o_put_mem, paper.o_put_mem);
  EXPECT_EQ(fit.params.o_get_mem, paper.o_get_mem);
  EXPECT_LT(fit.max_relative_error, 1e-6);
}

TEST(Ablation, DoubleBufferingLatencyGainOnSimulator) {
  // §4.2 at fixed MPB budget (two 96-line buffers vs one 192-line buffer):
  // latency improves for 1-2 chunk messages; peak throughput stays within
  // a few percent (Formula 15 carries no buffering term).
  harness::BcastRunSpec spec;
  spec.message_bytes = 192 * kCacheLineBytes;
  spec.iterations = 2;
  const double db_latency = run_broadcast(spec).latency_us.mean();
  spec.algorithm.double_buffering = false;
  spec.algorithm.chunk_lines = 192;
  const double single_latency = run_broadcast(spec).latency_us.mean();
  EXPECT_LT(db_latency, single_latency);

  spec.message_bytes = 4096 * kCacheLineBytes;
  const double single_tput = run_broadcast(spec).throughput_mbps;
  spec.algorithm.double_buffering = true;
  spec.algorithm.chunk_lines = 96;
  const double db_tput = run_broadcast(spec).throughput_mbps;
  EXPECT_NEAR(db_tput / single_tput, 1.0, 0.12);
}

TEST(Ablation, LeafDirectImprovesThroughputOnSimulator) {
  harness::BcastRunSpec spec;
  spec.message_bytes = 1024 * kCacheLineBytes;
  spec.iterations = 2;
  const double base = run_broadcast(spec).throughput_mbps;
  spec.algorithm.leaf_direct_to_memory = true;
  const double direct = run_broadcast(spec).throughput_mbps;
  EXPECT_GT(direct, base);
}

}  // namespace
}  // namespace ocb
