// Thread-count environment variable semantics (harness/parallel.h).
//
// OCB_SWEEP_THREADS and OCB_PDES_THREADS share one grammar: unset and "0"
// mean the default (hardware concurrency for sweeps, serial loop for PDES),
// malformed values warn once and fall back to that same default, positive
// integers are taken literally. Regression: "0" used to be malformed for
// OCB_SWEEP_THREADS and silently clamped to 1 worker instead of matching
// unset.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "harness/parallel.h"

namespace {

using namespace ocb::harness;
using detail::EnvParse;
using detail::parse_thread_env;

unsigned hardware_default() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

class EnvVars : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("OCB_SWEEP_THREADS");
    unsetenv("OCB_PDES_THREADS");
  }
  void TearDown() override {
    unsetenv("OCB_SWEEP_THREADS");
    unsetenv("OCB_PDES_THREADS");
  }
};

TEST(EnvParseGrammar, Classification) {
  unsigned v = 0;
  EXPECT_EQ(parse_thread_env(nullptr, v), EnvParse::kUnset);
  EXPECT_EQ(parse_thread_env("0", v), EnvParse::kZero);
  EXPECT_EQ(parse_thread_env("1", v), EnvParse::kValue);
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(parse_thread_env("48", v), EnvParse::kValue);
  EXPECT_EQ(v, 48u);

  // Everything that is not a plain nonnegative decimal integer is
  // malformed: empty, words, trailing garbage (the old stol parse accepted
  // "7abc" as 7), signs, and values beyond unsigned range.
  EXPECT_EQ(parse_thread_env("", v), EnvParse::kMalformed);
  EXPECT_EQ(parse_thread_env("abc", v), EnvParse::kMalformed);
  EXPECT_EQ(parse_thread_env("7abc", v), EnvParse::kMalformed);
  EXPECT_EQ(parse_thread_env("-3", v), EnvParse::kMalformed);
  EXPECT_EQ(parse_thread_env(" 4", v), EnvParse::kMalformed);
  EXPECT_EQ(parse_thread_env("99999999999999999999", v), EnvParse::kMalformed);
}

TEST_F(EnvVars, SweepZeroMatchesUnset) {
  const unsigned unset_value = sweep_threads();
  EXPECT_EQ(unset_value, hardware_default());
  ASSERT_EQ(setenv("OCB_SWEEP_THREADS", "0", /*overwrite=*/1), 0);
  EXPECT_EQ(sweep_threads(), unset_value);
}

TEST_F(EnvVars, SweepMalformedFallsBackToDefault) {
  ASSERT_EQ(setenv("OCB_SWEEP_THREADS", "not-a-number", /*overwrite=*/1), 0);
  EXPECT_EQ(sweep_threads(), hardware_default());
}

TEST_F(EnvVars, SweepExplicitValueWins) {
  ASSERT_EQ(setenv("OCB_SWEEP_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(sweep_threads(), 3u);
}

TEST_F(EnvVars, PdesZeroUnsetAndMalformedAllDisable) {
  EXPECT_EQ(pdes_threads(), 0u);
  ASSERT_EQ(setenv("OCB_PDES_THREADS", "0", /*overwrite=*/1), 0);
  EXPECT_EQ(pdes_threads(), 0u);
  ASSERT_EQ(setenv("OCB_PDES_THREADS", "4x", /*overwrite=*/1), 0);
  EXPECT_EQ(pdes_threads(), 0u);
  ASSERT_EQ(setenv("OCB_PDES_THREADS", "4", /*overwrite=*/1), 0);
  EXPECT_EQ(pdes_threads(), 4u);
}

TEST_F(EnvVars, ParallelMapWorkerScopeStillWins) {
  ASSERT_EQ(setenv("OCB_PDES_THREADS", "4", /*overwrite=*/1), 0);
  // Inside a parallel_map worker the PDES budget is forfeited regardless of
  // the environment (replication-level parallelism wins).
  const detail::ParallelWorkerScope scope;
  EXPECT_EQ(pdes_threads(), 0u);
}

}  // namespace
